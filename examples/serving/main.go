// Serving: push a request stream through the concurrent engine. Routing
// fans out over parallel workers reading immutable topology snapshots while
// a single adjuster applies the self-adjusting transformations in batches —
// the results are deterministic for a fixed seed and batch size, whatever
// the parallelism.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"lsasg"
	"lsasg/internal/obs"
)

func main() {
	const n = 128
	nw, err := lsasg.New(n, lsasg.WithSeed(42),
		lsasg.WithParallelism(4), // routing workers (snapshot readers)
		lsasg.WithBatchSize(32),  // adjustments per snapshot publication
		lsasg.WithTracing())      // latency histograms + slow-span ring
	if err != nil {
		log.Fatal(err)
	}

	// serveSkewed takes the unified lsasg.Service interface, so the same
	// driver would serve the sharded implementation — or any other — without
	// change. Only the post-hoc link inspection below needs the concrete type.
	stats, err := serveSkewed(nw, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d requests in %d batches (one snapshot each)\n",
		stats.Requests, stats.Batches)
	fmt.Printf("mean route distance %.3f (max %d) — measured in the snapshots\n",
		stats.MeanRouteDistance, stats.MaxRouteDistance)
	fmt.Printf("adjustment lag: mean %.1f, max %d requests behind the live graph\n",
		stats.MeanAdjustLag, stats.MaxAdjustLag)
	fmt.Printf("topology after: height %d, %d dummies\n", stats.Height, stats.DummyCount)

	// The hot pairs ended up directly linked, the same post-transformation
	// guarantee sequential serving gives.
	for _, p := range [][2]int{{3, 90}, {17, 64}} {
		if ok, lvl := nw.DirectlyLinked(p[0], p[1]); ok {
			fmt.Printf("hot pair %d↔%d directly linked at level %d\n", p[0], p[1], lvl)
		}
	}

	// The tracer measured the run as it happened: per-verb latency quantiles
	// from the log₂-bucket histograms, and the slowest op with its per-leg
	// breakdown from the span ring. These are wall-clock numbers — they vary
	// run to run, unlike the deterministic stats columns above.
	tr := nw.Tracer()
	for _, l := range tr.VerbLatencies() {
		if l.Count == 0 {
			continue
		}
		fmt.Printf("latency %s: n=%d p50=%v p99=%v\n", obs.KindName(l.Kind),
			l.Count, time.Duration(l.P50Nanos), time.Duration(l.P99Nanos))
	}
	for _, s := range tr.SlowSpans(1) {
		fmt.Printf("slowest op: seq=%d %s %d→%d total=%v dist=%d hops=%d lag=%d\n",
			s.Seq, obs.KindName(s.Kind), s.Src, s.Dst,
			time.Duration(s.TotalNanos), s.RouteDistance, s.RouteHops, s.AdjustLag)
		for _, leg := range s.Legs {
			fmt.Printf("  leg shard=%d dist=%d hops=%d lag=%d %v\n",
				leg.Shard, leg.Distance, leg.Hops, leg.AdjustLag, time.Duration(leg.Nanos))
		}
	}
}

// serveSkewed pushes a skewed stream — a few hot pairs plus background
// noise, the regime where self-adjustment pays — through any lsasg.Service.
// Every send selects on ctx so the producer unblocks if Serve returns
// early; the deferred cancel releases it.
func serveSkewed(svc lsasg.Service, total int) (lsasg.ServeStats, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	size := svc.N()
	reqs := make(chan lsasg.Pair)
	go func() {
		defer close(reqs)
		rng := rand.New(rand.NewSource(7))
		hot := [][2]int{{3, 90}, {17, 64}, {5, 120}, {44, 101}}
		for i := 0; i < total; i++ {
			p := lsasg.Pair{Src: rng.Intn(size), Dst: rng.Intn(size)}
			if rng.Float64() < 0.8 {
				h := hot[rng.Intn(len(hot))]
				p = lsasg.Pair{Src: h[0], Dst: h[1]}
			} else if p.Src == p.Dst {
				continue
			}
			select {
			case reqs <- p:
			case <-ctx.Done():
				return
			}
		}
	}()
	return svc.Serve(ctx, reqs)
}
