// Sharded serving: partition the key space across independent
// self-adjusting skip graphs behind an epoch-stamped shard directory.
// Intra-shard requests are the paper's model at size n/S; cross-shard
// requests route source→boundary, boundary→destination plus one forwarding
// hop; and a skew-driven rebalancer migrates contiguous key ranges when one
// shard runs hot — here provoked deliberately with a hot-range trace.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"lsasg"
)

func main() {
	const (
		n      = 512
		shards = 8
	)
	nw, err := lsasg.NewSharded(n, lsasg.WithShards(shards),
		lsasg.WithSeed(42), lsasg.WithParallelism(2), lsasg.WithBatchSize(32))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d keys over %d shards (directory epoch %d)\n",
		nw.N(), nw.Shards(), nw.DirectoryEpoch())

	// 85% of the traffic hammers the first sixteenth of the key space — a
	// contiguous range inside shard 0, the worst case for a range-sharded
	// directory and exactly what the rebalancer exists for.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reqs := make(chan lsasg.Pair)
	go func() {
		defer close(reqs)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 8192; i++ {
			var p lsasg.Pair
			if rng.Float64() < 0.85 {
				p = lsasg.Pair{Src: rng.Intn(n / 16), Dst: rng.Intn(n / 16)}
			} else {
				p = lsasg.Pair{Src: rng.Intn(n), Dst: rng.Intn(n)}
			}
			if p.Src == p.Dst {
				continue
			}
			select {
			case reqs <- p:
			case <-ctx.Done():
				return
			}
		}
	}()

	stats, err := nw.Serve(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d requests: %d intra-shard, %d cross-shard (%.0f%%)\n",
		stats.Requests, stats.Requests-stats.CrossShardRequests, stats.CrossShardRequests,
		100*float64(stats.CrossShardRequests)/float64(stats.Requests))
	fmt.Printf("mean route distance %.2f (legs + boundary hops), max leg %d\n",
		stats.MeanRouteDistance, stats.MaxRouteDistance)
	fmt.Printf("rebalancer: %d migrations moved %d keys; directory now at epoch %d\n",
		stats.Rebalances, stats.MigratedKeys, nw.DirectoryEpoch())

	st := nw.Stats()
	fmt.Printf("lifetime stats: %d requests, WS bound %.0f, %d shed adjustments\n",
		st.Requests, st.WorkingSetBound, st.ShedAdjustments)
}
