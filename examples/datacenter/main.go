// Datacenter: the paper's conclusion motivates DSG with VM-migration-style
// traffic. Live migration and replication create long-lived pairwise flows
// (source host ↔ destination host); DSG pulls each flow's endpoints into a
// direct link while the rest of the overlay keeps its O(log n) guarantees.
//
// The example drives 128 hosts with 85% of requests on 8 active migration
// flows and compares against a static skip graph on the identical
// sequence. It also reports the paper's working-set lower bound WS(σ)/m:
// no conforming algorithm can average below it, and DSG lands within a
// small constant of it.
package main

import (
	"fmt"
	"log"

	"lsasg"
	"lsasg/internal/baseline"
	"lsasg/internal/workload"
)

func main() {
	const (
		hosts    = 64
		flows    = 4
		requests = 3000
	)
	gen := workload.RepeatedPairs{Seed: 7, K: flows, Hot: 0.9}
	reqs := gen.Generate(hosts, requests)

	nw, err := lsasg.New(hosts, lsasg.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	static := baseline.NewStatic(hosts, 7)

	var adaptive, fixed int
	for _, r := range reqs {
		res, err := nw.Request(r.Src, r.Dst)
		if err != nil {
			log.Fatal(err)
		}
		adaptive += res.RouteDistance
		d, err := static.Request(r.Src, r.Dst)
		if err != nil {
			log.Fatal(err)
		}
		fixed += d
	}

	st := nw.Stats()
	fmt.Printf("%d hosts, %d migration flows, %d requests (90%% on flows)\n\n",
		hosts, flows, requests)
	fmt.Printf("self-adjusting (DSG) mean distance: %.3f\n", float64(adaptive)/float64(requests))
	fmt.Printf("static skip graph mean distance:    %.3f\n", float64(fixed)/float64(requests))
	fmt.Printf("improvement:                        %.1fx\n", float64(fixed)/float64(adaptive))
	fmt.Printf("\nworking-set lower bound WS(σ)/m:    %.3f (no algorithm can beat this)\n",
		st.WorkingSetBound/float64(requests))
	fmt.Printf("final height:                       %d (per-request O(log n) intact)\n", st.Height)
	fmt.Printf("worst single request:               %d hops\n", st.MaxRouteDistance)
}
