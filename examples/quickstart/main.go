// Quickstart: create a self-adjusting skip graph, send a few requests, and
// watch a repeatedly communicating pair become directly linked.
package main

import (
	"fmt"
	"log"
	"os"

	"lsasg"
)

func main() {
	// A 32-node overlay. Nodes are addressed 0..31.
	nw, err := lsasg.New(32, lsasg.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// First communication between 3 and 29: full skip-graph routing, then
	// the DSG transformation links them directly.
	res, err := nw.Request(3, 29)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first request 3→29: distance %d (working set %d), transform %d rounds\n",
		res.RouteDistance, res.WorkingSetNumber, res.TransformRounds)

	// The repeat is free: the pair now shares a linked list of size two.
	res, err = nw.Request(3, 29)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat request 3→29: distance %d (working set %d)\n",
		res.RouteDistance, res.WorkingSetNumber)
	if ok, lvl := nw.DirectlyLinked(3, 29); ok {
		fmt.Printf("3 and 29 are directly linked at level %d\n", lvl)
	}

	// Meanwhile every other pair still routes in O(log n): the height
	// stays logarithmic after each transformation.
	d, err := nw.Distance(0, 31)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unrelated pair 0→31 distance: %d (height %d)\n", d, nw.Height())

	fmt.Println("\ncurrent topology (tree of linked lists):")
	nw.RenderTopology(os.Stdout)
}
