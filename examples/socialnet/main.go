// Socialnet: peer-to-peer traffic driven by a skewed (Zipf) popularity
// distribution, the pattern the paper's introduction targets. The example
// shows the average routing cost dropping over time as DSG adapts, and
// contrasts the final hot-pair distances with cold-pair distances.
package main

import (
	"fmt"
	"log"

	"lsasg"
	"lsasg/internal/workload"
)

func main() {
	const (
		peers    = 128
		requests = 4000
		window   = 500
	)
	nw, err := lsasg.New(peers, lsasg.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	reqs := workload.Zipf{Seed: 3, S: 1.4}.Generate(peers, requests)

	fmt.Printf("%d peers, Zipf(1.4) traffic, %d requests\n\n", peers, requests)
	fmt.Println("window   mean distance   mean WS number")
	sumD, sumT, count := 0, 0, 0
	for i, r := range reqs {
		res, err := nw.Request(r.Src, r.Dst)
		if err != nil {
			log.Fatal(err)
		}
		sumD += res.RouteDistance
		sumT += res.WorkingSetNumber
		count++
		if (i+1)%window == 0 {
			fmt.Printf("%6d   %13.3f   %14.1f\n", i+1,
				float64(sumD)/float64(count), float64(sumT)/float64(count))
			sumD, sumT, count = 0, 0, 0
		}
	}

	// The hottest peers end up clustered: sample some popular pairs.
	fmt.Println("\nfinal distances between the five hottest peers:")
	hot := hottest(reqs, 5)
	for i := 0; i < len(hot); i++ {
		for j := i + 1; j < len(hot); j++ {
			d, err := nw.Distance(hot[i], hot[j])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %3d ↔ %-3d : %d\n", hot[i], hot[j], d)
		}
	}
}

// hottest returns the k most frequent endpoints of the sequence.
func hottest(reqs []workload.Request, k int) []int {
	counts := make(map[int]int)
	for _, r := range reqs {
		counts[r.Src]++
		counts[r.Dst]++
	}
	out := make([]int, 0, k)
	for len(out) < k {
		best, bestC := -1, -1
		for p, c := range counts {
			if c > bestC {
				best, bestC = p, c
			}
		}
		out = append(out, best)
		delete(counts, best)
	}
	return out
}
