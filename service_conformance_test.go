package lsasg

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// Interface-conformance suite: both Service implementations, driven through
// nothing but the interface with the same op sequence, must expose the same
// observable KV state — the flags and values of every synchronous call,
// every pipelined outcome, and the final scanned keyspace. Path metrics
// (distances, lag) legitimately differ between one graph and four shards,
// so they are not part of the contract checked here.

func conformanceBuilders(n int) map[string]func() (Service, error) {
	return map[string]func() (Service, error){
		"single": func() (Service, error) {
			return New(n, WithSeed(21), WithBatchSize(1))
		},
		"sharded": func() (Service, error) {
			return NewSharded(n, WithShards(4), WithSeed(21),
				WithBatchSize(1), WithRebalanceWindow(1))
		},
	}
}

// observe drives svc through a deterministic mixed sequence and renders
// everything observable into one comparable transcript.
func observe(t *testing.T, svc Service, n int) string {
	t.Helper()
	var out []byte
	note := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format+"\n", args...)...)
	}

	rng := rand.New(rand.NewSource(77))
	// Deletes leave the topology for good (until a put re-joins), so ops
	// that route — gets, routes, and every origin — must draw live keys.
	live := make([]bool, n)
	for i := range live {
		live[i] = true
	}
	pickLive := func() int {
		for {
			if k := rng.Intn(n); live[k] {
				return k
			}
		}
	}

	// Synchronous surface: interleaved puts, reads, deletes, scans.
	for i := 0; i < 120; i++ {
		src := pickLive()
		switch i % 5 {
		case 0, 1:
			key := rng.Intn(n)
			_, existed, err := svc.Put(src, key, []byte(fmt.Sprintf("s%d", i)))
			note("put %d: existed=%v err=%v", key, existed, err)
			live[key] = true
		case 2:
			key := pickLive()
			val, _, found, err := svc.Get(src, key)
			note("get %d: %q found=%v err=%v", key, val, found, err)
		case 3:
			key := rng.Intn(n)
			kvs, err := svc.Scan(src, key, 1+rng.Intn(6))
			note("scan %d: err=%v", key, err)
			for _, kv := range kvs {
				note("  %d=%q", kv.Key, kv.Value)
			}
		case 4:
			key := pickLive()
			if key != src { // deleting the op's own origin would orphan it
				existed, err := svc.Delete(src, key)
				note("delete %d: existed=%v err=%v", key, existed, err)
				live[key] = false
			}
		}
	}

	// Pipelined surface: one ServeOps generation over a mixed batch.
	var ops []Op
	for i := 0; i < 150; i++ {
		src := pickLive()
		switch i % 4 {
		case 0:
			key := rng.Intn(n)
			ops = append(ops, PutOp(src, key, []byte(fmt.Sprintf("p%d", i))))
			live[key] = true
		case 1:
			ops = append(ops, GetOp(src, pickLive()))
		case 2:
			key := pickLive()
			for key == src {
				key = pickLive()
			}
			ops = append(ops, RouteOp(src, key))
		case 3:
			ops = append(ops, ScanOp(src, rng.Intn(n), 1+rng.Intn(6)))
		}
	}
	ch := make(chan Op)
	go func() {
		defer close(ch)
		for _, op := range ops {
			ch <- op
		}
	}()
	st, err := svc.ServeOps(context.Background(), ch, func(r OpResult) {
		switch r.Op.Kind {
		case GetKind:
			note("op get %d: %q found=%v", r.Op.Dst, r.Value, r.Found)
		case PutKind:
			note("op put %d: existed=%v", r.Op.Dst, r.Existed)
		case ScanKind:
			note("op scan %d: %d entries", r.Op.Dst, len(r.Entries))
			for _, kv := range r.Entries {
				note("  %d=%q", kv.Key, kv.Value)
			}
		case RouteKind:
			note("op route %d→%d", r.Op.Src, r.Op.Dst)
		}
	})
	if err != nil {
		t.Fatalf("ServeOps: %v", err)
	}
	note("kv stats: gets=%d/%d puts=%d/%d deletes=%d/%d scans=%d/%d",
		st.Gets, st.GetHits, st.Puts, st.PutInserts,
		st.Deletes, st.DeleteHits, st.Scans, st.ScannedEntries)

	// Final observable keyspace.
	kvs, err := svc.Scan(0, 0, n)
	if err != nil {
		t.Fatalf("final scan: %v", err)
	}
	for _, kv := range kvs {
		note("final %d=%q", kv.Key, kv.Value)
	}
	note("n=%d", svc.N())
	if svc.Height() < 1 {
		t.Errorf("height = %d", svc.Height())
	}
	if svc.Stats().Requests == 0 {
		t.Error("stats recorded no requests")
	}
	if err := svc.Verify(); err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestServiceConformance(t *testing.T) {
	const n = 32
	transcripts := map[string]string{}
	for name, build := range conformanceBuilders(n) {
		svc, err := build()
		if err != nil {
			t.Fatal(err)
		}
		transcripts[name] = observe(t, svc, n)
	}
	if transcripts["single"] != transcripts["sharded"] {
		a, b := transcripts["single"], transcripts["sharded"]
		// Report the first diverging line, not two walls of text.
		la, lb := 0, 0
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				break
			}
			if a[i] == '\n' {
				la, lb = i+1, i+1
			}
		}
		enda, endb := la, lb
		for enda < len(a) && a[enda] != '\n' {
			enda++
		}
		for endb < len(b) && b[endb] != '\n' {
			endb++
		}
		t.Errorf("observable KV state diverges:\n single  %q\n sharded %q",
			a[la:enda], b[lb:endb])
	}
}

// TestServiceConformanceSerial drives the route-only Serve surface through
// the interface: same request stream, same served count, clean Verify on
// both implementations.
func TestServiceConformanceSerial(t *testing.T) {
	const n = 32
	for name, build := range conformanceBuilders(n) {
		t.Run(name, func(t *testing.T) {
			svc, err := build()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			reqs := make(chan Pair)
			go func() {
				defer close(reqs)
				for i := 0; i < 200; i++ {
					src := rng.Intn(n)
					dst := rng.Intn(n)
					for dst == src {
						dst = rng.Intn(n)
					}
					reqs <- Pair{Src: src, Dst: dst}
				}
			}()
			st, err := svc.Serve(context.Background(), reqs)
			if err != nil {
				t.Fatal(err)
			}
			if st.Requests != 200 {
				t.Errorf("%s served %d requests, want 200", name, st.Requests)
			}
			if err := svc.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
