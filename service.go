package lsasg

import (
	"context"

	"lsasg/internal/core"
)

// Service is the unified serving contract of this package: one surface for
// topology queries, the synchronous KV data plane, and the deterministic
// batch pipelines, implemented by both the single-graph Network and the
// partitioned ShardedNetwork. Code written against Service — a benchmark
// driver, an example, or the wire daemon in cmd/dsgserve — fronts either
// topology unchanged.
//
// The concurrency contract is the implementations': methods must not be
// called concurrently with each other (all concurrency lives inside Serve
// and ServeOps), and Serve/ServeOps producers must pair every channel send
// with the call's ctx.
type Service interface {
	// N returns the size of the key space [0, N).
	N() int
	// Height returns the current skip-graph height (the tallest shard's,
	// when partitioned).
	Height() int
	// Stats returns aggregate statistics for the requests served so far.
	Stats() Stats
	// Verify checks all structural invariants of the current topology.
	Verify() error

	// Get reads key's value as an access from src, adapting the topology
	// like a communication request.
	Get(src, key int) (value []byte, version int64, found bool, err error)
	// Put writes value to key as an access from src; an absent key joins
	// the topology.
	Put(src, key int, value []byte) (version int64, existed bool, err error)
	// Delete removes key from the keyspace (a tracked leave).
	Delete(src, key int) (existed bool, err error)
	// Scan reads up to limit value-bearing entries in ascending key order
	// starting at the first key ≥ start, requested by origin src.
	Scan(src, start, limit int) ([]KV, error)

	// Serve consumes communication requests until the channel closes (or
	// ctx is cancelled) and serves them through the deterministic pipeline.
	Serve(ctx context.Context, reqs <-chan Pair) (ServeStats, error)
	// ServeOps consumes op envelopes — routes and KV operations — through
	// the same pipeline; onResult, when non-nil, observes every op's
	// outcome in request order.
	ServeOps(ctx context.Context, ops <-chan Op, onResult func(OpResult)) (ServeStats, error)
}

// Both topologies implement the full contract.
var (
	_ Service = (*Network)(nil)
	_ Service = (*ShardedNetwork)(nil)
)

// runServeOps is the shared driver behind every ServeOps implementation: it
// validates public envelopes, forwards them as internal ops to serveFn
// (one deterministic pipeline run), and folds a validation failure into the
// returned error once the pipeline has drained the batches already in
// flight.
func runServeOps[S any](ops <-chan Op, n int, serveFn func(<-chan core.Op) (S, error)) (S, error) {
	inner := make(chan core.Op)
	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(inner)
		for {
			select {
			case <-done:
				return
			case op, ok := <-ops:
				if !ok {
					return
				}
				if err := op.Validate(n); err != nil {
					errc <- err
					return
				}
				select {
				case inner <- op.internal():
				case <-done:
					return
				}
			}
		}
	}()
	st, err := serveFn(inner)
	close(done)
	if err == nil {
		select {
		case err = <-errc:
		default:
		}
	}
	return st, wrapErr(err)
}

// forwardPairs adapts a Pair producer onto ServeOps: Serve is exactly
// ServeOps over a pure-route stream, so both implementations express it
// this way and the stats/bookkeeping assembly lives in one place.
func forwardPairs(ctx context.Context, reqs <-chan Pair,
	serveOps func(context.Context, <-chan Op, func(OpResult)) (ServeStats, error)) (ServeStats, error) {
	ops := make(chan Op)
	done := make(chan struct{})
	go func() {
		defer close(ops)
		for {
			select {
			case <-done:
				return
			case p, ok := <-reqs:
				if !ok {
					return
				}
				select {
				case ops <- RouteOp(p.Src, p.Dst):
				case <-done:
					return
				}
			}
		}
	}()
	st, err := serveOps(ctx, ops, nil)
	close(done)
	return st, err
}
